(* Benchmark harness (Bechamel): the quantitative companion to experiment
   E9.  Each benchmark measures one simulated operation (or one primitive)
   end-to-end through the engine, over a persistent deployment, so the
   numbers compare register classes and system sizes on equal footing.

     dune exec bench/main.exe
*)

open Bechamel
open Toolkit
open Registers

(* A persistent deployment; each staged run drives one (or a few)
   operations through the live engine. *)
let full_deployment ?(n = 9) ?(f = 1) ?(mode = Params.Async) ?medium ?retry
    () =
  let params = Params.create_unchecked ?retry ~n ~f ~mode () in
  let rng = Sim.Rng.create 99 in
  let trace = Sim.Trace.create ~record_events:false () in
  let engine = Sim.Engine.create ~trace ~rng:(Sim.Rng.split rng) () in
  let lo, hi =
    match mode with
    | Params.Async -> (1, 10)
    | Params.Sync { max_delay; _ } -> (1, max_delay)
  in
  let net =
    Net.create ~engine ~params ?medium
      ~link_delay:(fun rng -> Sim.Link.uniform rng ~lo ~hi)
      ()
  in
  let adversary = Byzantine.Adversary.deploy ~net ~rng:(Sim.Rng.split rng) in
  (engine, net, adversary)

let deployment ?n ?f ?mode ?medium ?retry () =
  let engine, net, _ = full_deployment ?n ?f ?mode ?medium ?retry () in
  (engine, net)

let run_op engine f =
  let h = Sim.Fiber.spawn f in
  Sim.Engine.run engine;
  match Sim.Fiber.status h with
  | Sim.Fiber.Done -> ()
  | Sim.Fiber.Running | Sim.Fiber.Failed _ -> failwith "bench op wedged"

(* --- primitives --- *)

let bench_seqnum =
  let counter = ref 0 in
  Test.make ~name:"seqnum: succ + gt_cd"
    (Staged.stage (fun () ->
         counter := Seqnum.succ ~modulus:Seqnum.default_modulus !counter;
         ignore (Seqnum.gt_cd ~modulus:Seqnum.default_modulus !counter 12345)))

let bench_epoch =
  let rng = Sim.Rng.create 5 in
  let pool = Array.init 64 (fun _ -> Epoch.arbitrary rng ~k:4) in
  let i = ref 0 in
  Test.make ~name:"epoch: next_epoch + max_epoch (k=4)"
    (Staged.stage (fun () ->
         i := (!i + 1) mod 60;
         let es = [ pool.(!i); pool.(!i + 1); pool.(!i + 2); pool.(!i + 3) ] in
         ignore (Epoch.max_epoch es);
         ignore (Epoch.next_epoch ~k:4 es)))

let bench_quorum =
  let rng = Sim.Rng.create 6 in
  let cells =
    List.init 17 (fun _ -> Messages.arbitrary_cell rng)
    @ List.init 5 (fun _ -> { Messages.sn = 1; v = Value.int 1 })
  in
  Test.make ~name:"quorum: find among 22 acks"
    (Staged.stage (fun () -> ignore (Quorum.find_cell ~threshold:5 cells)))

(* --- registers: one write + one read per run --- *)

let bench_register ~name mk =
  let op = mk () in
  Test.make ~name (Staged.stage op)

let swsr_regular_ops ?(n = 9) ?(f = 1) () () =
  let engine, net = deployment ~n ~f () in
  let w = Swsr_regular.writer ~net ~client_id:1 ~inst:0 in
  let r = Swsr_regular.reader ~net ~client_id:2 ~inst:0 in
  let k = ref 0 in
  fun () ->
    incr k;
    run_op engine (fun () ->
        Swsr_regular.write w (Value.int !k);
        ignore (Swsr_regular.read r))

let swsr_atomic_ops ?(n = 9) ?(f = 1) ?(mode = Params.Async) ?medium () () =
  let engine, net = deployment ~n ~f ~mode ?medium () in
  let w = Swsr_atomic.writer ~net ~client_id:1 ~inst:0 () in
  let r = Swsr_atomic.reader ~net ~client_id:2 ~inst:0 () in
  let k = ref 0 in
  fun () ->
    incr k;
    run_op engine (fun () ->
        Swsr_atomic.write w (Value.int !k);
        ignore (Swsr_atomic.read r))

(* The deadline/health layer with no faults: every first attempt
   completes, so the ns/op delta against the plain swsr-regular row is
   the whole overhead of deadline-armed waits plus health bookkeeping. *)
let swsr_regular_retry_ops ?(n = 9) ?(f = 1) () () =
  let engine, net = deployment ~retry:Params.default_retry ~n ~f () in
  let w = Swsr_regular.writer ~net ~client_id:1 ~inst:0 in
  let r = Swsr_regular.reader ~net ~client_id:2 ~inst:0 in
  let k = ref 0 in
  fun () ->
    incr k;
    run_op engine (fun () ->
        (match Swsr_regular.write_o w (Value.int !k) with
        | Outcome.Ok () -> ()
        | Outcome.Degraded _ | Outcome.Timed_out _ ->
          failwith "no-fault bench degraded");
        ignore (Swsr_regular.read_o r))

(* The degraded path itself: 4 of 9 slots crashed (beyond the f = 1
   bound), so every write burns the full retry budget and reports
   Degraded.  The row is the op latency a client pays for graceful
   degradation instead of a hang. *)
let swsr_regular_degraded_ops ?(n = 9) ?(f = 1) () () =
  let engine, net, adversary =
    full_deployment ~retry:Params.default_retry ~n ~f ()
  in
  for i = 0 to 3 do
    Byzantine.Adversary.crash adversary i
  done;
  let w = Swsr_regular.writer ~net ~client_id:1 ~inst:0 in
  let k = ref 0 in
  fun () ->
    incr k;
    run_op engine (fun () ->
        match Swsr_regular.write_o w (Value.int !k) with
        | Outcome.Degraded _ -> ()
        | Outcome.Ok () | Outcome.Timed_out _ ->
          failwith "crash-burst bench expected Degraded")

let swmr_ops () =
  let engine, net = deployment () in
  let w = Swmr.writer ~net ~client_id:1 ~base_inst:0 ~readers:3 () in
  let r = Swmr.reader ~net ~client_id:2 ~base_inst:0 ~reader_index:0 () in
  let k = ref 0 in
  fun () ->
    incr k;
    run_op engine (fun () ->
        Swmr.write w (Value.int !k);
        ignore (Swmr.read r))

let swmr_wb_ops () =
  let engine, net = deployment () in
  let w = Swmr_wb.writer ~net ~client_id:1 ~base_inst:0 ~readers:3 () in
  let r = Swmr_wb.reader ~net ~client_id:2 ~base_inst:0 ~reader_index:0 ~readers:3 () in
  let k = ref 0 in
  fun () ->
    incr k;
    run_op engine (fun () ->
        Swmr_wb.write w (Value.int !k);
        ignore (Swmr_wb.read r))

let kv_ops () =
  let engine, net = deployment () in
  let cfg = Kv.Store.config ~keys:[ "a"; "b" ] ~clients:2 in
  let s0 = Kv.Store.client ~net ~cfg ~id:0 ~client_id:1 in
  let s1 = Kv.Store.client ~net ~cfg ~id:1 ~client_id:2 in
  let k = ref 0 in
  fun () ->
    incr k;
    run_op engine (fun () ->
        Kv.Store.set s0 ~key:"a" (Value.int !k);
        ignore (Kv.Store.get s1 ~key:"a"))

let mwmr_ops () =
  let engine, net = deployment () in
  let cfg = Mwmr.default_config ~m:3 in
  let p0 = Mwmr.process ~net ~cfg ~id:0 ~client_id:1 in
  let p1 = Mwmr.process ~net ~cfg ~id:1 ~client_id:2 in
  let k = ref 0 in
  fun () ->
    incr k;
    run_op engine (fun () ->
        Mwmr.write p0 (Value.int !k);
        ignore (Mwmr.read p1))

(* --- oracles --- *)

let bench_checker =
  let h = Oracles.History.create () in
  for i = 1 to 100 do
    Oracles.History.record h ~proc:"w" ~kind:Oracles.History.Write
      ~inv:(Sim.Vtime.of_int (i * 20))
      ~resp:(Sim.Vtime.of_int ((i * 20) + 10))
      (Value.int i);
    Oracles.History.record h ~proc:"r" ~kind:Oracles.History.Read
      ~inv:(Sim.Vtime.of_int ((i * 20) + 11))
      ~resp:(Sim.Vtime.of_int ((i * 20) + 19))
      (Value.int i)
  done;
  Test.make ~name:"oracle: atomicity check, 200-op history"
    (Staged.stage (fun () -> ignore (Oracles.Atomicity.Sw.check h)))

(* --- model checker --- *)

(* The exhaustive tiny configuration from the mc test suite: small enough
   that one full search fits a staged run, so the ns/op row tracks the
   end-to-end cost of an exhaustive verification. *)
let mc_tiny_cfg =
  {
    Mc.Config.family = Mc.Config.Regular;
    n = 3;
    f = 0;
    byz = [];
    writes = 1;
    reads = 1;
    read_budget = 2;
    menu = [];
    oracle = Mc.Config.Family_default;
  }

let bench_mc_exhaustive =
  Test.make ~name:"mc: exhaustive search (regular, n=3, t=0)"
    (Staged.stage (fun () -> ignore (Mc.Checker.search mc_tiny_cfg)))

(* Explorer throughput: states expanded per second and the peak size of
   the canonicalized visited set.  These are one-shot measurements (a
   bounded search is too slow for a staged run and its cost is dominated
   by replayed prefixes anyway), reported alongside the bechamel rows. *)
let mc_throughput_rows () =
  let measure name ?budgets cfg =
    let t0 = Sys.time () in
    let o = Mc.Checker.search ?budgets cfg in
    let dt = Sys.time () -. t0 in
    let s = o.Mc.Checker.stats in
    ( name,
      s.Mc.Checker.states,
      s.Mc.Checker.peak_visited,
      dt,
      float_of_int s.Mc.Checker.states /. dt,
      o.Mc.Checker.exhaustive,
      s.Mc.Checker.replays,
      float_of_int s.Mc.Checker.replays /. float_of_int (max 1 s.Mc.Checker.states)
    )
  in
  [
    measure "mc: regular n=3 t=0 (exhaustive)" mc_tiny_cfg;
    measure "mc: regular n=4 t=1, 1 silent byz (10k-state budget)"
      ~budgets:{ Mc.Checker.max_states = 10_000; max_depth = 10_000 }
      {
        mc_tiny_cfg with
        Mc.Config.n = 4;
        f = 1;
        byz = [ (0, Mc.Config.Silent) ];
        read_budget = 8;
      };
  ]

(* Portfolio scaling: the same exhaustive search fanned over K domains.
   Slices explore under distinct deterministic orders, so aggregate
   states/s should scale near-linearly while the K=1 row pins the
   sequential baseline.  Wall-clock (not [Sys.time], which sums CPU
   across domains) is the honest denominator here. *)
let mc_parallel_rows () =
  List.map
    (fun domains ->
      let c0 = Sys.time () in
      let t0 = Unix.gettimeofday () in
      let o = Mc.Checker.search_parallel ~domains mc_tiny_cfg in
      let dt = Unix.gettimeofday () -. t0 in
      let cpu = Sys.time () -. c0 in
      let states = o.Mc.Checker.stats.Mc.Checker.states in
      ( Printf.sprintf "mc-parallel: regular n=3 t=0, %d domain(s)" domains,
        domains,
        states,
        dt,
        cpu,
        float_of_int states /. dt ))
    [ 1; 2; 4 ]

(* Campaign throughput: randomized trials per second through the full
   deploy/schedule/check pipeline, fanned over 2 domains. *)
let chaos_row () =
  let cfg =
    { (Chaos.Campaign.default_config ~family:Chaos.Campaign.Regular) with
      Chaos.Campaign.writes = 20;
      reads = 15;
    }
  in
  let trials = 4 and domains = 2 in
  let t0 = Unix.gettimeofday () in
  let r = Chaos.Campaign.run ~domains cfg ~seed:99 ~trials in
  let dt = Unix.gettimeofday () -. t0 in
  let ops =
    List.fold_left
      (fun acc (t : Chaos.Campaign.trial) ->
        acc + t.outcome.Chaos.Campaign.ops)
      0 r.Chaos.Campaign.trials
  in
  ( Printf.sprintf "chaos: regular campaign, %d trials, %d domain(s)" trials
      domains,
    trials,
    domains,
    ops,
    dt,
    float_of_int trials /. dt )

(* --- data link --- *)

let altbit_ops () =
  let s =
    Datalink.Alt_bit.create ~rng:(Sim.Rng.create 77) ~cap:4 ~loss:0.2
      ~dup:0.1 ()
  in
  let k = ref 0 in
  fun () ->
    incr k;
    (match Datalink.Alt_bit.send s !k with Ok () -> () | Error e -> failwith e);
    ignore (Datalink.Alt_bit.take_delivered s)

let tests =
  Test.make_grouped ~name:"stabreg"
    [
      bench_seqnum;
      bench_epoch;
      bench_quorum;
      bench_checker;
      bench_register ~name:"datalink: alt-bit handshake (loss 20%)" altbit_ops;
      bench_register ~name:"swsr-regular: write+read (n=9)"
        (swsr_regular_ops ());
      bench_register ~name:"swsr-regular: write+read (n=25)"
        (swsr_regular_ops ~n:25 ~f:3 ());
      bench_register ~name:"swsr-regular+retry: write+read (no faults, n=9)"
        (swsr_regular_retry_ops ());
      bench_register
        ~name:"swsr-regular degraded: write (4 of 9 slots down)"
        (swsr_regular_degraded_ops ());
      bench_register ~name:"swsr-atomic: write+read (n=9)"
        (swsr_atomic_ops ());
      bench_register ~name:"swsr-atomic: write+read (n=17)"
        (swsr_atomic_ops ~n:17 ~f:2 ());
      bench_register ~name:"swsr-atomic sync: write+read (n=4)"
        (swsr_atomic_ops ~n:4 ~f:1
           ~mode:(Params.Sync { max_delay = 10; slack = 3 })
           ());
      bench_register ~name:"swsr-atomic lossy 30%: write+read (n=9)"
        (swsr_atomic_ops
           ~medium:(Net.Stabilizing { loss = 0.3; dup = 0.1; retrans = 30 })
           ());
      bench_register ~name:"swmr: write+read (3 readers, n=9)" swmr_ops;
      bench_register ~name:"swmr+write-back: write+read (3 readers, n=9)"
        swmr_wb_ops;
      bench_register ~name:"mwmr: write+read (m=3, n=9)" mwmr_ops;
      bench_register ~name:"kv: set+get (m=2, n=9)" kv_ops;
      bench_mc_exhaustive;
    ]

let () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Printf.printf "%-52s %14s %12s\n" "benchmark" "ns/op" "ops/s";
  Printf.printf "%s\n" (String.make 80 '-');
  List.iter
    (fun (name, ns) ->
      Printf.printf "%-52s %14.1f %12.0f\n" name ns (1e9 /. ns))
    rows;
  let mc_rows = mc_throughput_rows () in
  Printf.printf "\n%-52s %10s %12s %12s %10s\n" "model checker" "states"
    "states/s" "peak visited" "replays/st";
  Printf.printf "%s\n" (String.make 100 '-');
  List.iter
    (fun (name, states, peak, _dt, sps, exhaustive, _replays, rps) ->
      Printf.printf "%-52s %10d %12.0f %12d %10.3f%s\n" name states sps peak
        rps
        (if exhaustive then "" else "  (budget)"))
    mc_rows;
  let par_rows = mc_parallel_rows () in
  Printf.printf "\n%-52s %10s %12s\n" "parallel portfolio" "states"
    "states/s";
  Printf.printf "%s\n" (String.make 80 '-');
  List.iter
    (fun (name, _domains, states, _dt, _cpu, sps) ->
      Printf.printf "%-52s %10d %12.0f\n" name states sps)
    par_rows;
  let (chaos_name, chaos_trials, chaos_domains, chaos_ops, chaos_dt, tps) =
    chaos_row ()
  in
  Printf.printf "\n%-52s %8.2f trials/s (%d ops in %.2fs)\n" chaos_name tps
    chaos_ops chaos_dt;
  (* Machine-readable companion: v3 keeps every v2 section and adds the
     retry-layer rows (no-fault overhead, degraded-path latency) to the
     bechamel section additively.  Written to a new file so the
     committed BENCH_1.json / BENCH_2.json stay fixed points of their
     eras. *)
  let json =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "stabreg/bench/v3");
        ( "rows",
          Obs.Json.List
            (List.map
               (fun (name, ns) ->
                 let num x =
                   if Float.is_nan x then Obs.Json.Null else Obs.Json.Float x
                 in
                 Obs.Json.Obj
                   [
                     ("name", Obs.Json.Str name);
                     ("ns_per_op", num ns);
                     ("ops_per_sec", num (1e9 /. ns));
                   ])
               rows) );
        (* Explorer throughput, measured one-shot rather than via OLS. *)
        ( "mc",
          Obs.Json.List
            (List.map
               (fun (name, states, peak, dt, sps, exhaustive, replays, rps) ->
                 Obs.Json.Obj
                   [
                     ("name", Obs.Json.Str name);
                     ("states", Obs.Json.Int states);
                     ("peak_visited", Obs.Json.Int peak);
                     ("seconds", Obs.Json.Float dt);
                     ("states_per_sec", Obs.Json.Float sps);
                     ("exhaustive", Obs.Json.Bool exhaustive);
                     ("replays", Obs.Json.Int replays);
                     ("replays_per_state", Obs.Json.Float rps);
                   ])
               mc_rows) );
        ( "mc_parallel",
          Obs.Json.List
            (List.map
               (fun (name, domains, states, dt, cpu, sps) ->
                 Obs.Json.Obj
                   [
                     ("name", Obs.Json.Str name);
                     ("domains", Obs.Json.Int domains);
                     ("states", Obs.Json.Int states);
                     ("seconds", Obs.Json.Float dt);
                     ("cpu_seconds", Obs.Json.Float cpu);
                     ("states_per_sec", Obs.Json.Float sps);
                   ])
               par_rows) );
        ( "chaos",
          Obs.Json.Obj
            [
              ("name", Obs.Json.Str chaos_name);
              ("trials", Obs.Json.Int chaos_trials);
              ("domains", Obs.Json.Int chaos_domains);
              ("ops", Obs.Json.Int chaos_ops);
              ("seconds", Obs.Json.Float chaos_dt);
              ("trials_per_sec", Obs.Json.Float tps);
            ] );
      ]
  in
  let oc = open_out "BENCH_3.json" in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nrows written to BENCH_3.json\n"
