(** Effect-based cooperative processes.

    Clients of the simulated system (the paper's writer and readers) are
    sequential processes that block on message exchanges.  Fibers let that
    client code be written in direct style, mirroring the paper's
    pseudocode, while the engine remains an ordinary event loop: a fiber
    suspends by handing the scheduler a resumption callback, and whatever
    event completes the wait invokes the callback.

    This module is the only place effect handlers appear in the library. *)

type status =
  | Running  (** spawned, not yet finished (possibly suspended) *)
  | Done  (** ran to completion *)
  | Failed of exn  (** raised; the exception is also re-raised at the
                       resumption site so tests fail loudly *)

type handle

val spawn : ?name:string -> (unit -> unit) -> handle
(** [spawn f] runs [f] immediately as a fiber until it finishes or first
    suspends, and returns its handle. *)

val status : handle -> status

val name : handle -> string

val suspend : ?label:string -> (('a -> unit) -> unit) -> 'a
(** [suspend register] suspends the calling fiber. [register resume] must
    arrange for [resume v] to be called exactly once later (typically from
    an engine event); the suspended fiber then continues with [v].
    Must be called from within a fiber.  [label], when given, records what
    the fiber is waiting on (e.g. ["Mailbox.recv"]) for the deadlock
    watchdog; it is cleared on resumption. *)

val blocked_on : handle -> string option
(** The label of the suspension the fiber is currently parked on, if it is
    [Running] and its last {!suspend} carried one.  [None] for finished
    fibers and unlabeled waits.  Lets a harness turn a silent engine
    quiescence with live fibers into a diagnosed deadlock report. *)
