lib/sim/heap.mli:
