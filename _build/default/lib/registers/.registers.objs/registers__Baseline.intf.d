lib/registers/baseline.mli: Net Server Sim Value
