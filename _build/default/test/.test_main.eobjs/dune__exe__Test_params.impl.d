test/test_params.ml: Alcotest Params Registers Result Util
