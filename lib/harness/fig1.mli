(** Deterministic construction of the paper's Figure 1 — the new/old
    inversion a regular register admits and the practically atomic
    register eliminates.

    A write of 1 (after a completed write of 0) is kept pending across two
    back-to-back reads by scripted link delays; the acknowledgment sets of
    the two reads are steered so the first sees the new value's quorum and
    the second the old value's.  Running the schedule against the Fig. 2
    register reproduces the inversion; against the Fig. 3 register, the
    [>_cd]-guarded bookkeeping suppresses it (line 13M3). *)

type outcome = {
  read1 : Registers.Value.t option;
  read2 : Registers.Value.t option;
  write1_pending_during_reads : bool;
      (** sanity: the schedule really kept write(1) concurrent with both
          reads *)
  inversion : bool;  (** read1 = 1 and read2 = 0 *)
  trace : Sim.Trace.t;  (** the run's trace/metrics, for run reports *)
}

val run : ?instrument:(Sim.Engine.t -> unit) -> [ `Regular | `Atomic ] -> outcome
(** [instrument] is called on the freshly built engine before the
    schedule runs — the hook for attaching event sinks. *)
