module Json = Obs.Json

let schema_version = "stabreg/lint-report/v1"

let baseline_schema_version = "stabreg/lint-baseline/v1"

type entry = { file : string; rule : string; line : int }

let entry_compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> String.compare a.rule b.rule
    | c -> c)
  | c -> c

let entry_matches e (f : Finding.t) =
  String.equal e.file f.Finding.file
  && String.equal e.rule f.Finding.rule
  && e.line = f.Finding.line

type t = {
  paths : string list;
  files_scanned : int;
  suppressed : int;
  stale_baseline : int;
  fresh : Finding.t list;
  baselined : Finding.t list;
}

let make ~paths ~files_scanned ~suppressed ~baseline findings =
  let baselined, fresh =
    List.partition
      (fun f -> List.exists (fun e -> entry_matches e f) baseline)
      findings
  in
  let stale_baseline =
    List.length
      (List.filter
         (fun e -> not (List.exists (fun f -> entry_matches e f) findings))
         baseline)
  in
  { paths; files_scanned; suppressed; stale_baseline; fresh; baselined }

(* --- report serialization ------------------------------------------- *)

let finding_json ~baselined f =
  match Finding.to_json f with
  | Json.Obj fields -> Json.Obj (fields @ [ ("baselined", Json.Bool baselined) ])
  | j -> j

let rule_catalog_json t =
  let count rule_id =
    List.length
      (List.filter
         (fun (f : Finding.t) -> String.equal f.Finding.rule rule_id)
         (t.fresh @ t.baselined))
  in
  Json.List
    (List.map
       (fun (r : Rule.t) ->
         Json.Obj
           [
             ("id", Json.Str r.Rule.id);
             ("name", Json.Str r.Rule.name);
             ("summary", Json.Str r.Rule.summary);
             ("severity", Json.Str (Finding.severity_to_string r.Rule.severity));
             ("findings", Json.Int (count r.Rule.id));
           ])
       Rules.all)

let to_json t =
  let all =
    List.sort Finding.compare (t.fresh @ t.baselined)
    |> List.map (fun f ->
           finding_json
             ~baselined:(List.exists (fun g -> g == f) t.baselined)
             f)
  in
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("tool", Json.Str "stablint");
      ("paths", Json.List (List.map (fun p -> Json.Str p) t.paths));
      ("files_scanned", Json.Int t.files_scanned);
      ( "summary",
        Json.Obj
          [
            ("new", Json.Int (List.length t.fresh));
            ("baselined", Json.Int (List.length t.baselined));
            ("suppressed", Json.Int t.suppressed);
            ("stale_baseline", Json.Int t.stale_baseline);
          ] );
      ("rules", rule_catalog_json t);
      ("findings", Json.List all);
    ]

let render t = Json.to_string_pretty (to_json t) ^ "\n"

(* --- validation ------------------------------------------------------ *)

let ( let* ) r f = Result.bind r f

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed %S" name)

let check_schema want j =
  let* got = field "schema" Json.to_string_opt j in
  if String.equal got want then Ok ()
  else Error (Printf.sprintf "schema mismatch: got %S, want %S" got want)

let validate j =
  let* () = check_schema schema_version j in
  let* _tool = field "tool" Json.to_string_opt j in
  let* paths = field "paths" Json.to_list_opt j in
  let* () =
    if List.for_all (fun p -> Json.to_string_opt p <> None) paths then Ok ()
    else Error "paths: expected a list of strings"
  in
  let* _files = field "files_scanned" Json.to_int_opt j in
  let* summary = field "summary" Json.to_obj_opt j in
  let* () =
    List.fold_left
      (fun acc key ->
        let* () = acc in
        match List.assoc_opt key summary with
        | Some (Json.Int _) -> Ok ()
        | _ -> Error (Printf.sprintf "summary.%s: expected an integer" key))
      (Ok ())
      [ "new"; "baselined"; "suppressed"; "stale_baseline" ]
  in
  let* rules = field "rules" Json.to_list_opt j in
  let* () =
    List.fold_left
      (fun acc r ->
        let* () = acc in
        let* _id = field "id" Json.to_string_opt r in
        let* _name = field "name" Json.to_string_opt r in
        let* _summary = field "summary" Json.to_string_opt r in
        let* _count = field "findings" Json.to_int_opt r in
        Ok ())
      (Ok ()) rules
  in
  let* findings = field "findings" Json.to_list_opt j in
  List.fold_left
    (fun acc f ->
      let* () = acc in
      let* _ = Finding.of_json f in
      match Json.member "baselined" f with
      | Some (Json.Bool _) -> Ok ()
      | _ -> Error "finding: missing or ill-typed \"baselined\"")
    (Ok ()) findings

(* --- baseline -------------------------------------------------------- *)

let baseline_of_findings findings =
  let entries =
    findings
    |> List.map (fun (f : Finding.t) ->
           Json.Obj
             [
               ("file", Json.Str f.Finding.file);
               ("rule", Json.Str f.Finding.rule);
               ("line", Json.Int f.Finding.line);
               ("note", Json.Str f.Finding.message);
             ])
  in
  Json.Obj
    [
      ("schema", Json.Str baseline_schema_version);
      ("entries", Json.List entries);
    ]

let render_baseline j = Json.to_string_pretty j ^ "\n"

let baseline_entries j =
  let* () = check_schema baseline_schema_version j in
  let* entries = field "entries" Json.to_list_opt j in
  let* parsed =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* file = field "file" Json.to_string_opt e in
        let* rule = field "rule" Json.to_string_opt e in
        let* line = field "line" Json.to_int_opt e in
        Ok ({ file; rule; line } :: acc))
      (Ok []) entries
  in
  Ok (List.sort entry_compare parsed)

let validate_baseline j =
  let* _ = baseline_entries j in
  Ok ()

let validate_any j =
  let* schema = field "schema" Json.to_string_opt j in
  if String.equal schema schema_version then validate j
  else if String.equal schema baseline_schema_version then validate_baseline j
  else
    Error
      (Printf.sprintf "unknown schema %S (expected %S or %S)" schema
         schema_version baseline_schema_version)
