lib/harness/script.mli: Sim
