(* The observability pipeline: JSON round-trips, the run-report schema
   and its validator, histogram bucketing, the hub's inactive fast path,
   and an end-to-end check that an instrumented deployment actually
   produces per-class traffic counters, op histograms and typed events. *)

open Util

(* --- Json --- *)

let sample_json =
  Obs.Json.Obj
    [
      ("null", Obs.Json.Null);
      ("bool", Obs.Json.Bool true);
      ("int", Obs.Json.Int (-42));
      ("float", Obs.Json.Float 2.5);
      ("integral_float", Obs.Json.Float 3.0);
      ("str", Obs.Json.Str "quote \" backslash \\ newline \n done");
      ( "list",
        Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Str "two"; Obs.Json.Null ] );
      ("empty_obj", Obs.Json.Obj []);
      ("empty_list", Obs.Json.List []);
    ]

let test_json_round_trip () =
  check_true "compact round trip"
    (Obs.Json.parse_exn (Obs.Json.to_string sample_json) = sample_json);
  check_true "pretty round trip"
    (Obs.Json.parse_exn (Obs.Json.to_string_pretty sample_json) = sample_json)

let test_json_int_float_distinction () =
  (* The ".0" marker keeps Int and integral Float distinct across a
     print/parse cycle — report diffs must not flip types run to run. *)
  check_true "int stays int" (Obs.Json.parse_exn "7" = Obs.Json.Int 7);
  check_true "marked float stays float"
    (Obs.Json.parse_exn (Obs.Json.to_string (Obs.Json.Float 7.0))
    = Obs.Json.Float 7.0)

let test_json_parse_errors () =
  check_true "garbage" (Result.is_error (Obs.Json.parse "{nope"));
  check_true "trailing junk" (Result.is_error (Obs.Json.parse "1 2"));
  check_true "ok" (Obs.Json.parse "{\"a\": [1, 2]}" |> Result.is_ok)

(* Trace files carry protocol payload fragments and user-chosen labels
   verbatim; the escaper must keep every byte round-trippable. *)
let test_json_string_escaping () =
  (* Named control characters render as their short escapes... *)
  Alcotest.(check string)
    "named escapes" "\"\\t\\n\\r\""
    (Obs.Json.to_string (Obs.Json.Str "\t\n\r"));
  (* ...the rest of C0 as \u twiddles, lowercase, zero-padded. *)
  Alcotest.(check string)
    "C0 escapes" "\"\\u0000\\u0001\\u001f\""
    (Obs.Json.to_string (Obs.Json.Str "\x00\x01\x1f"));
  Alcotest.(check string)
    "backslash before escape char" "\"a\\\\n\""
    (Obs.Json.to_string (Obs.Json.Str "a\\n"));
  (* Every C0 byte, plus quote and backslash, survives a round trip. *)
  let hostile =
    String.init 0x22 (fun i ->
        if i = 0x20 then '"' else if i = 0x21 then '\\' else Char.chr i)
  in
  check_true "control-character round trip"
    (Obs.Json.parse_exn (Obs.Json.to_string (Obs.Json.Str hostile))
    = Obs.Json.Str hostile);
  (* Multi-byte UTF-8 passes through byte-for-byte, unescaped. *)
  let utf8 = "r\xc3\xa9gulier \xe2\x9c\x93" in
  Alcotest.(check string)
    "utf-8 passthrough"
    ("\"" ^ utf8 ^ "\"")
    (Obs.Json.to_string (Obs.Json.Str utf8));
  check_true "utf-8 round trip"
    (Obs.Json.parse_exn (Obs.Json.to_string (Obs.Json.Str utf8))
    = Obs.Json.Str utf8);
  (* The parser accepts \u escapes our writer never emits. *)
  check_true "parser reads latin-1 \\u escapes"
    (Obs.Json.parse_exn "\"\\u00e9\"" = Obs.Json.Str "\xe9")

(* --- Report schema --- *)

let mk_report () =
  let r = Obs.Report.create ~experiment:"T0" ~seed:3 in
  Obs.Report.set_params r ~n:9 ~f:1 ~mode:"async";
  Obs.Report.add_message_class r ~name:"WRITE" ~sent:10 ~recv:9 ~bytes:170;
  Obs.Report.add_message_class r ~name:"ACK_WRITE" ~sent:9 ~recv:9 ~bytes:99;
  Obs.Report.add_op_summary r ~name:"swsr_atomic.write"
    {
      Obs.Report.count = 10;
      mean = 12.0;
      min = 4.0;
      p50 = 11.0;
      p90 = 18.0;
      p95 = 20.0;
      p99 = 22.0;
      p999 = 22.0;
      max = 22.0;
    };
  Obs.Report.set_stabilization r 120;
  Obs.Report.set_counters r [ ("ss.broadcasts", 4) ];
  Obs.Report.add_extra r "note" (Obs.Json.Str "free-form");
  r

let test_report_validates () =
  let j = Obs.Report.to_json (mk_report ()) in
  (match Obs.Report.validate j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected valid: %s" e);
  (* And it survives serialization. *)
  match Obs.Report.validate (Obs.Json.parse_exn (Obs.Json.to_string j)) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "round-tripped report invalid: %s" e

let test_report_write_and_reparse () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "stabreg-obs-test" in
  let path = Obs.Report.write ~dir (mk_report ()) in
  check_true "named after the experiment"
    (Filename.basename path = "T0.json");
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  match Obs.Report.validate (Obs.Json.parse_exn s) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "written report invalid: %s" e

let test_report_rejects () =
  let valid = Obs.Report.to_json (mk_report ()) in
  let strip key j =
    match j with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj (List.filter (fun (k, _) -> k <> key) fields)
    | _ -> j
  in
  let replace key v j =
    match j with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj (List.map (fun (k, old) -> (k, if k = key then v else old)) fields)
    | _ -> j
  in
  check_true "missing schema"
    (Result.is_error (Obs.Report.validate (strip "schema" valid)));
  check_true "wrong schema string"
    (Result.is_error
       (Obs.Report.validate (replace "schema" (Obs.Json.Str "v0") valid)));
  check_true "missing params"
    (Result.is_error (Obs.Report.validate (strip "params" valid)));
  check_true "stabilization must be int or null"
    (Result.is_error
       (Obs.Report.validate
          (replace "stabilization_time" (Obs.Json.Str "soon") valid)));
  check_true "non-object" (Result.is_error (Obs.Report.validate (Obs.Json.Int 1)))

(* --- histogram buckets --- *)

let test_bucket_boundaries () =
  (* Bucket 0 holds [0,1); bucket i>=1 holds [2^((i-1)/4), 2^(i/4)). *)
  check_int "zero" 0 (Obs.Metrics.bucket_index 0.0);
  check_int "sub-one" 0 (Obs.Metrics.bucket_index 0.99);
  check_int "one" 1 (Obs.Metrics.bucket_index 1.0);
  check_int "negative clamps" 0 (Obs.Metrics.bucket_index (-5.0));
  (* Every bucket's lower bound must index back into that bucket, and a
     hair below it into the previous one. *)
  for i = 1 to Obs.Metrics.num_buckets - 2 do
    let lo, hi = Obs.Metrics.bucket_bounds i in
    check_int (Printf.sprintf "lo of %d" i) i (Obs.Metrics.bucket_index lo);
    check_int
      (Printf.sprintf "below hi of %d" i)
      i
      (Obs.Metrics.bucket_index (hi *. 0.999));
    check_true (Printf.sprintf "bounds ordered %d" i) (lo < hi)
  done;
  let _, last_hi = Obs.Metrics.bucket_bounds (Obs.Metrics.num_buckets - 1) in
  check_true "last bucket open" (last_hi = infinity)

let test_histogram_stats () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "op.t.read" in
  check_int "empty count" 0 (Obs.Metrics.hist_count h);
  check_true "empty quantile" (Obs.Metrics.quantile h 0.5 = 0.0);
  List.iter (Obs.Metrics.observe h) [ 1.0; 2.0; 4.0; 8.0; 100.0 ];
  check_int "count" 5 (Obs.Metrics.hist_count h);
  check_true "min exact" (Obs.Metrics.hist_min h = 1.0);
  check_true "max exact" (Obs.Metrics.hist_max h = 100.0);
  check_true "q0 is min" (Obs.Metrics.quantile h 0.0 = 1.0);
  check_true "q1 is max" (Obs.Metrics.quantile h 1.0 = 100.0);
  let p50 = Obs.Metrics.quantile h 0.5 in
  (* Within the containing log bucket's ~19% relative width of 4. *)
  check_true "p50 near 4" (p50 >= 3.0 && p50 <= 5.0);
  let s = Obs.Report.op_summary_of_histogram h in
  check_int "summary count" 5 s.Obs.Report.count;
  check_true "summary min" (s.Obs.Report.min = 1.0);
  check_true "summary max" (s.Obs.Report.max = 100.0)

(* Snapshot accessors sort by key, so report and debug output never
   depend on hash-table layout (stablint R1 pin). *)
let test_metrics_snapshots_sorted () =
  let keys = [ "zeta"; "alpha"; "mu"; "beta"; "omega" ] in
  let snapshot order =
    let m = Obs.Metrics.create () in
    List.iter
      (fun k ->
        Obs.Metrics.incr m k;
        Obs.Metrics.set_gauge m k 1.0;
        Obs.Metrics.observe_named m k 1.0)
      order;
    ( List.map fst (Obs.Metrics.counters m),
      List.map fst (Obs.Metrics.gauges m),
      List.map fst (Obs.Metrics.histograms m) )
  in
  let sorted = List.sort String.compare keys in
  let c1, g1, h1 = snapshot keys in
  let c2, g2, h2 = snapshot (List.rev keys) in
  Alcotest.(check (list string)) "counters sorted" sorted c1;
  Alcotest.(check (list string)) "gauges sorted" sorted g1;
  Alcotest.(check (list string)) "histograms sorted" sorted h1;
  Alcotest.(check (list string)) "counters order-independent" c1 c2;
  Alcotest.(check (list string)) "gauges order-independent" g1 g2;
  Alcotest.(check (list string)) "histograms order-independent" h1 h2

(* --- hub fast path --- *)

let test_hub_inactive_fast_path () =
  let hub = Obs.Hub.create () in
  check_false "inactive" (Obs.Hub.active hub);
  let built = ref 0 in
  Obs.Hub.emit_with hub (fun () ->
      incr built;
      Obs.Event.Mark { time = 0; label = "x" });
  check_int "thunk not run when inactive" 0 !built;
  let sink, events = Obs.Sink.memory () in
  Obs.Hub.attach hub sink;
  check_true "active" (Obs.Hub.active hub);
  Obs.Hub.emit_with hub (fun () ->
      incr built;
      Obs.Event.Mark { time = 1; label = "y" });
  check_int "thunk runs when active" 1 !built;
  check_int "event delivered" 1 (List.length (events ()));
  Obs.Hub.detach hub "memory";
  check_false "inactive after detach" (Obs.Hub.active hub);
  Obs.Hub.emit hub (Obs.Event.Mark { time = 2; label = "z" });
  check_int "no delivery after detach" 1 (List.length (events ()))

let test_op_ids_monotonic () =
  let hub = Obs.Hub.create () in
  let a = Obs.Hub.next_op_id hub in
  let b = Obs.Hub.next_op_id hub in
  check_true "fresh ids" (b > a)

(* --- the instrumented stack, end to end --- *)

let test_instrumented_scenario () =
  let scn = async_scenario () in
  let sink, events = Obs.Sink.memory () in
  Obs.Hub.attach (Harness.Scenario.hub scn) sink;
  let w =
    Registers.Swsr_atomic.writer ~net:scn.Harness.Scenario.net ~client_id:100
      ~inst:0 ()
  in
  let r =
    Registers.Swsr_atomic.reader ~net:scn.Harness.Scenario.net ~client_id:101
      ~inst:0 ()
  in
  run_fiber scn "wr" (fun () ->
      for i = 1 to 5 do
        Registers.Swsr_atomic.write w (int_value i);
        ignore (Registers.Swsr_atomic.read r)
      done);
  let m = Harness.Scenario.metrics scn in
  (* Per-class traffic: 5 writes to 9 servers each. *)
  check_int "WRITE sent" 45 (Obs.Metrics.counter m "msg.sent.WRITE.count");
  check_int "WRITE recv" 45 (Obs.Metrics.counter m "msg.recv.WRITE.count");
  check_true "WRITE bytes accounted"
    (Obs.Metrics.counter m "msg.sent.WRITE.bytes" > 0);
  check_true "acks flowed back"
    (Obs.Metrics.counter m "msg.recv.ACK_WRITE.count" > 0);
  (* Op spans land in per-register histograms. *)
  let wh = Obs.Metrics.histogram m "op.swsr_atomic.write" in
  let rh = Obs.Metrics.histogram m "op.swsr_atomic.read" in
  check_int "write spans" 5 (Obs.Metrics.hist_count wh);
  check_int "read spans" 5 (Obs.Metrics.hist_count rh);
  check_true "latencies positive" (Obs.Metrics.hist_min wh > 0.0);
  (* Typed events reached the sink, invokes and returns pair up. *)
  let evs = events () in
  let count p = List.length (List.filter p evs) in
  check_int "op invokes" 10
    (count (function Obs.Event.Op_invoke _ -> true | _ -> false));
  check_int "op returns" 10
    (count (function Obs.Event.Op_return _ -> true | _ -> false));
  check_true "sends observed"
    (count (function Obs.Event.Send _ -> true | _ -> false) > 0);
  check_true "recvs observed"
    (count (function Obs.Event.Recv _ -> true | _ -> false) > 0);
  (* Each event serializes to one JSON object. *)
  List.iter
    (fun e ->
      match Obs.Json.parse (Obs.Json.to_string (Obs.Event.to_json e)) with
      | Ok (Obs.Json.Obj _) -> ()
      | Ok _ -> Alcotest.fail "event JSON not an object"
      | Error msg -> Alcotest.failf "event JSON unparsable: %s" msg)
    evs

let test_uninstrumented_scenario_still_counts () =
  (* No sink attached: events are skipped but metrics still accumulate. *)
  let scn = async_scenario () in
  let w =
    Registers.Swsr_atomic.writer ~net:scn.Harness.Scenario.net ~client_id:100
      ~inst:0 ()
  in
  run_fiber scn "w" (fun () -> Registers.Swsr_atomic.write w (int_value 1));
  let m = Harness.Scenario.metrics scn in
  check_int "WRITE sent" 9 (Obs.Metrics.counter m "msg.sent.WRITE.count");
  check_int "write span" 1
    (Obs.Metrics.hist_count (Obs.Metrics.histogram m "op.swsr_atomic.write"))

let tests =
  [
    case "json round trip" test_json_round_trip;
    case "json int/float distinction" test_json_int_float_distinction;
    case "json parse errors" test_json_parse_errors;
    case "json string escaping edge cases" test_json_string_escaping;
    case "report validates" test_report_validates;
    case "report write + reparse" test_report_write_and_reparse;
    case "report rejects malformed" test_report_rejects;
    case "histogram bucket boundaries" test_bucket_boundaries;
    case "histogram stats" test_histogram_stats;
    case "metric snapshots are key-sorted" test_metrics_snapshots_sorted;
    case "hub inactive fast path" test_hub_inactive_fast_path;
    case "op ids monotonic" test_op_ids_monotonic;
    case "instrumented scenario" test_instrumented_scenario;
    case "metrics without sinks" test_uninstrumented_scenario_still_counts;
  ]
