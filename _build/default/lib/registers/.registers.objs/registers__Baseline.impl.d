lib/registers/baseline.ml: Array Collect List Messages Net Params Quorum Seqnum Server Sim
