(* One collection pass over the port's mailbox: fill per-server slots with
   acknowledgments of [round] until [stop_at] distinct servers answered or
   [deadline] (when given) passes.  The round tag was captured at broadcast
   time: the wait matches the broadcast that was just issued even if a
   transient fault corrupts the port's tag while the round trip is in
   flight. *)
let gather ~net ~port ~round ~filter ~stop_at ~deadline =
  let params = Net.params net in
  let n = (params : Params.t).n in
  let slots : 'a option array = Array.make n None in
  let filled = ref 0 in
  let expected_round = round in
  let consider (env : Messages.client_envelope) =
    let slot_free =
      env.server >= 0 && env.server < n
      && match slots.(env.server) with None -> true | Some _ -> false
    in
    if env.round = expected_round && slot_free then
      match filter env.body with
      | None -> ()
      | Some payload ->
        slots.(env.server) <- Some payload;
        incr filled
  in
  let expired = ref false in
  (match deadline with
  | None ->
    (* The paper's asynchronous client: block until enough distinct
       servers answered, however long that takes. *)
    while !filled < stop_at do
      consider (Sim.Mailbox.recv port.Net.mailbox)
    done
  | Some deadline ->
    let engine = Net.engine net in
    let continue = ref true in
    while !continue && !filled < stop_at do
      match Sim.Mailbox.recv_until ~engine ~deadline port.Net.mailbox with
      | None ->
        continue := false;
        expired := true
      | Some env -> consider env
    done);
  (slots, !filled, !expired)

let acks ~net ~port ~round ~filter =
  let params = Net.params net in
  let slots, _, _ =
    match Params.sync_timeout params with
    | None ->
      gather ~net ~port ~round ~filter ~stop_at:(Params.ack_wait params)
        ~deadline:None
    | Some timeout ->
      (* Synchronous model: wait for all n servers or the round-trip
         bound. *)
      let engine = Net.engine net in
      let deadline = Sim.Vtime.add (Sim.Engine.now engine) timeout in
      gather ~net ~port ~round ~filter ~stop_at:(params : Params.t).n
        ~deadline:(Some deadline)
  in
  Array.to_list slots |> List.filter_map (fun s -> s)

let ack_writes ~net ~port ~round =
  acks ~net ~port ~round ~filter:(function
    | Messages.Ack_write h -> Some h
    | Messages.Ack_read _ -> None)

let ack_reads ~net ~port ~round =
  acks ~net ~port ~round ~filter:(function
    | Messages.Ack_read (c, h) -> Some (c, h)
    | Messages.Ack_write _ -> None)

(* --- deadline-bounded attempts with health tracking --- *)

type 'a attempt = { payloads : 'a list; acks : int; expired : bool }

(* How many distinct answers attempt number [attempt] (0-based) waits for.
   The first attempt wants the paper's full quota; retries stop counting on
   suspected slots — they wait only for the servers believed responsive,
   floored at the read quorum so a wrong suspicion can never lower the
   evidence a successful operation rests on. *)
let attempt_target params ~health ~attempt =
  let full = Params.ack_wait params in
  if attempt = 0 then full
  else max (Params.read_quorum params) (min full (Health.responsive health))

let attempt_once ~net ~port ~round ~attempt ~filter =
  let params = Net.params net in
  match Params.retry params with
  | None ->
    (* No policy installed: exactly the legacy blocking collection. *)
    let payloads = acks ~net ~port ~round ~filter in
    { payloads; acks = List.length payloads; expired = false }
  | Some r ->
    let engine = Net.engine net in
    let deadline = Sim.Vtime.add (Sim.Engine.now engine) r.Params.deadline in
    let stop_at = attempt_target params ~health:port.Net.health ~attempt in
    let slots, filled, expired =
      gather ~net ~port ~round ~filter ~stop_at ~deadline:(Some deadline)
    in
    let health = port.Net.health in
    Array.iteri
      (fun s slot ->
        Health.note health ~server:s ~answered:(slot <> None))
      slots;
    let payloads = Array.to_list slots |> List.filter_map (fun s -> s) in
    { payloads; acks = filled; expired }

let sleep ~net span =
  if span > 0 then
    let engine = Net.engine net in
    Sim.Fiber.suspend ~label:"Collect.backoff" (fun resume ->
        Sim.Engine.schedule engine ~delay:span (fun () -> resume ()))

(* Backoff before retry number [attempt] (1-based): the policy's
   exponential curve plus jitter from the port's own deterministic
   stream. *)
let backoff_wait ~net ~port ~attempt =
  match Params.retry (Net.params net) with
  | None -> ()
  | Some r ->
    let base = Params.backoff_span r ~attempt in
    let jitter =
      if r.Params.jitter > 0 then
        Sim.Rng.int port.Net.retry_rng (r.Params.jitter + 1)
      else 0
    in
    Obs.Metrics.incr (Sim.Engine.metrics (Net.engine net)) "collect.retries";
    let hub = Sim.Engine.hub (Net.engine net) in
    if Obs.Hub.active hub then
      Obs.Hub.emit hub
        (Obs.Event.Mark
           {
             time = Sim.Vtime.to_int (Sim.Engine.now (Net.engine net));
             label =
               Printf.sprintf "retry.c%d.a%d" port.Net.client_id attempt;
           });
    sleep ~net (base + jitter)

type 'a collected = {
  payloads : 'a list;
  acks : int;
  attempts : int;
  complete : bool;
}

let reason_of ~net ~port ~attempts ~acks ~need =
  {
    Outcome.attempts;
    acks;
    need;
    suspects =
      (match Params.retry (Net.params net) with
      | None -> []
      | Some _ -> Health.suspects port.Net.health);
  }

let judge ~net ~port (c : 'a collected) =
  let params = Net.params net in
  if c.acks >= Params.write_ok_threshold params then Outcome.Ok ()
  else
    let r =
      reason_of ~net ~port ~attempts:c.attempts ~acks:c.acks
        ~need:(Params.write_ok_threshold params)
    in
    if c.acks >= Params.read_quorum params then Outcome.Degraded r
    else Outcome.Timed_out r

(* One logical collect — broadcast, gather, and retry with backoff until
   the full quota answers or the policy's attempts run out.  Returns the
   best attempt seen.  With no retry policy this is a single legacy
   (blocking or sync-timeout) round. *)
let retrying ?span ~net ~port ~inst ~body ~filter () =
  let params = Net.params net in
  let full = Params.ack_wait params in
  let max_attempts =
    match Params.retry params with
    | None -> 1
    | Some r -> max 1 r.Params.attempts
  in
  let rec go k best_payloads best_acks =
    let round = Net.ss_broadcast ?span net port ~inst body in
    let a = attempt_once ~net ~port ~round ~attempt:k ~filter in
    let best_payloads, best_acks =
      if a.acks >= best_acks then (a.payloads, a.acks)
      else (best_payloads, best_acks)
    in
    if a.acks >= full then
      { payloads = a.payloads; acks = a.acks; attempts = k + 1; complete = true }
    else if k + 1 >= max_attempts then
      {
        payloads = best_payloads;
        acks = best_acks;
        attempts = k + 1;
        complete = false;
      }
    else begin
      backoff_wait ~net ~port ~attempt:(k + 1);
      go (k + 1) best_payloads best_acks
    end
  in
  go 0 [] 0

let write_filter = function
  | Messages.Ack_write h -> Some h
  | Messages.Ack_read _ -> None

let read_filter = function
  | Messages.Ack_read (c, h) -> Some (c, h)
  | Messages.Ack_write _ -> None
