(* E5 — Read termination under concurrent writes; the helping mechanism
   (Lemmas 2 and 10).

   Heavy write pressure (600 back-to-back writes, 100 reads) against one
   equivocating Byzantine server, at and below the paper's sizing.  Report
   the reader's inquiry-loop iterations and how often the helping path
   (lines 14-15) actually answers a read. *)

open Registers

let run_one ~seed ~n ~delay =
  let params = Common.async_params ~n ~f:1 in
  let scn = Common.scenario ~seed ~delay ~params () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 0
    Byzantine.Behavior.equivocate;
  let w, r = Common.atomic_pair scn in
  Common.run_jobs scn
    [
      ( "writer",
        fun () ->
          for i = 1 to 600 do
            Swsr_atomic.write w (Value.int i)
          done );
      ( "reader",
        fun () ->
          for _ = 1 to 100 do
            ignore (Swsr_atomic.read r)
          done );
    ];
  Common.observe_scn scn;
  (Swsr_atomic.reader_iterations r, Swsr_atomic.help_returns r)

let run ~seed =
  Harness.Report.section
    "E5: reader cost vs write pressure (helping mechanism, Lemma 2/10)";
  let seeds = 10 in
  let rows =
    List.map
      (fun (n, dhi) ->
        let iters = ref 0 and helps = ref 0 in
        for s = 0 to seeds - 1 do
          let i, h = run_one ~seed:(seed + s) ~n ~delay:(1, dhi) in
          iters := !iters + i;
          helps := !helps + h
        done;
        let reads = seeds * 100 in
        [
          string_of_int n;
          Printf.sprintf "1..%d" dhi;
          Printf.sprintf "%.2f" (float_of_int !iters /. float_of_int reads);
          Printf.sprintf "%d / %d" !helps reads;
        ])
      [ (9, 10); (9, 30); (6, 10); (6, 30); (5, 10); (5, 30) ]
  in
  Harness.Report.table
    ~title:
      "600 back-to-back writes vs 100 reads, t=1, one equivocator; 10 seeds"
    ~header:
      [ "n"; "link delays"; "iterations/read"; "reads answered via helping" ]
    rows;
  print_endline
    "  Shape: at n = 8t+1 every read settles in one round (two in-flight\n\
    \  values plus one junk value cannot defeat a 2t+1 quorum among n-t\n\
    \  acks), so the helping path is pure safety margin.  Below the bound\n\
    \  rounds start failing and the helping value begins answering reads —\n\
    \  increasingly so as n shrinks; without it the scripted scheduler of\n\
    \  E3 starves those reads forever."
