examples/quickstart.ml: Byzantine Harness List Params Printf Registers Sim Swsr_atomic Value
