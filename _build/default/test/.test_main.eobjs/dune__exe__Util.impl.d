test/util.ml: Alcotest Harness List QCheck_alcotest Random Registers Sim Sys
