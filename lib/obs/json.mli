(** A minimal JSON tree, printer and parser.

    The observability layer serializes traces, metrics and run reports
    without adding a dependency on an external JSON package; the parser
    exists so tests (and the [validate] subcommand) can round-trip what
    the serializers emit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering.  Non-finite floats render as [null]; integral
    floats keep a [".0"] marker so printing and re-parsing preserves the
    Int/Float distinction. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for report files meant to be diffed. *)

exception Parse_error of string

val parse_exn : string -> t
(** Raises {!Parse_error}. *)

val parse : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val to_int_opt : t -> int option

val to_float_opt : t -> float option
(** Accepts both [Float] and [Int]. *)

val to_string_opt : t -> string option

val to_list_opt : t -> t list option

val to_obj_opt : t -> (string * t) list option

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
