(* E7 — Comparison against the baselines the paper positions itself
   against.

   (a) A classical non-self-stabilizing Byzantine-quorum register with
   unbounded timestamps: a transient fault planting an agreed huge
   timestamp at t+1 servers (or rolling the writer's counter back) wedges
   it forever; the Fig. 3 register recovers by the next write.

   (b) A quiescence-dependent regular register modelling [3]
   (Bonomi–Potop-Butucaru–Tixeuil, n >= 5t+1, no helping): under a
   continuously active writer plus a Byzantine splitter its reads starve;
   the helping mechanism removes the quiescence assumption. *)

open Registers

let poison_comparison ~seed =
  let poison = Value.str "poison" in
  (* Classical register with monotone-timestamp servers. *)
  let scn1 = Common.scenario ~seed ~params:(Common.async_params ~n:9 ~f:1) () in
  Baseline.Nonstab.install_servers ~net:scn1.Harness.Scenario.net
    (Byzantine.Adversary.servers scn1.Harness.Scenario.adversary);
  let nw = Baseline.Nonstab.writer ~net:scn1.Harness.Scenario.net ~client_id:100 ~inst:0 in
  let nr = Baseline.Nonstab.reader ~net:scn1.Harness.Scenario.net ~client_id:101 ~inst:0 in
  let plant scn =
    List.iter
      (fun s ->
        let srv = Byzantine.Adversary.server scn.Harness.Scenario.adversary s in
        let i = Server.instance srv 0 in
        i.Server.last_val <- { Messages.sn = 1_000_000; v = poison })
      [ 4; 5; 6 ]
  in
  let wedged = ref 0 in
  Common.run_jobs scn1
    [
      ( "wr",
        fun () ->
          Baseline.Nonstab.write nw (Value.int 1);
          plant scn1;
          for i = 2 to 11 do
            Baseline.Nonstab.write nw (Value.int i);
            match Baseline.Nonstab.read nr with
            | Some v when Value.equal v poison -> incr wedged
            | Some _ | None -> ()
          done );
    ];
  (* The Fig. 3 register under the identical fault. *)
  let scn2 = Common.scenario ~seed ~params:(Common.async_params ~n:9 ~f:1) () in
  let w, r = Common.atomic_pair scn2 in
  let recovered = ref 0 in
  Common.run_jobs scn2
    [
      ( "wr",
        fun () ->
          Swsr_atomic.write w (Value.int 1);
          plant scn2;
          for i = 2 to 11 do
            Swsr_atomic.write w (Value.int i);
            match Swsr_atomic.read r with
            | Some v when Value.equal v (Value.int i) -> incr recovered
            | Some _ | None -> ()
          done );
    ];
  Common.observe_scn scn2;
  (!wedged, !recovered)

let pressure_comparison ~seed =
  (* [3]-style at its native n = 6 >= 5t+1; ours at n = 9 = 8t+1. *)
  let run_quiescent () =
    let scn =
      Common.scenario ~seed ~params:(Common.async_params ~n:6 ~f:1) ()
    in
    Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 0
      Byzantine.Behavior.equivocate;
    let w = Baseline.Quiescent.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 in
    let r = Baseline.Quiescent.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 in
    let failures = ref 0 in
    Common.run_jobs scn
      [
        ( "writer",
          fun () ->
            for i = 1 to 80 do
              Baseline.Quiescent.write w (Value.int i)
            done );
        ( "reader",
          fun () ->
            for _ = 1 to 12 do
              match Baseline.Quiescent.read ~max_iterations:4 r with
              | None -> incr failures
              | Some _ -> ()
            done );
      ];
    (!failures, Baseline.Quiescent.reader_iterations r)
  in
  let run_helping () =
    let scn =
      Common.scenario ~seed ~params:(Common.async_params ~n:9 ~f:1) ()
    in
    Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 0
      Byzantine.Behavior.equivocate;
    let w, r = Common.regular_pair scn in
    let failures = ref 0 in
    Common.run_jobs scn
      [
        ( "writer",
          fun () ->
            for i = 1 to 80 do
              Swsr_regular.write w (Value.int i)
            done );
        ( "reader",
          fun () ->
            for _ = 1 to 12 do
              match Swsr_regular.read ~max_iterations:4 r with
              | None -> incr failures
              | Some _ -> ()
            done );
      ];
    (!failures, Swsr_regular.reader_iterations r)
  in
  (run_quiescent (), run_helping ())

let run ~seed =
  Harness.Report.section "E7: baselines — why self-stabilization and helping";
  let wedged = ref 0 and recovered = ref 0 in
  let seeds = 5 in
  for s = 0 to seeds - 1 do
    let wdg, rec_ = poison_comparison ~seed:(seed + s) in
    wedged := !wedged + wdg;
    recovered := !recovered + rec_
  done;
  Harness.Report.table
    ~title:
      "poisoned timestamp at 3 servers (t+1 agreement), 10 subsequent writes"
    ~header:[ "register"; "reads after the fault"; "outcome" ]
    [
      [
        "classical (unbounded ts)";
        Harness.Report.pct !wedged (seeds * 10);
        "stuck on the poison";
      ];
      [
        "Fig. 3 (bounded >_cd)";
        Harness.Report.pct !recovered (seeds * 10);
        "current value";
      ];
    ];
  let qf = ref 0 and qi = ref 0 and hf = ref 0 and hi = ref 0 in
  for s = 0 to seeds - 1 do
    let (a, b), (c, d) = pressure_comparison ~seed:(seed + s) in
    qf := !qf + a;
    qi := !qi + b;
    hf := !hf + c;
    hi := !hi + d
  done;
  Harness.Report.table
    ~title:
      "continuously active writer + splitter; 12 reads x 5 seeds, 4-round budget"
    ~header:[ "register"; "starved reads"; "total rounds" ]
    [
      [ "quiescence-dependent [3] (n=6)"; Harness.Report.pct !qf 60; string_of_int !qi ];
      [ "helping, Fig. 2 (n=9)"; Harness.Report.pct !hf 60; string_of_int !hi ];
    ];
  print_endline
    "  Shape: the classical register never recovers from the poisoned\n\
    \  configuration while Fig. 3 shrugs it off; without helping, the\n\
    \  quiescence-dependent reader burns extra rounds under write\n\
    \  pressure and starves outright under the scripted scheduler of E3."
