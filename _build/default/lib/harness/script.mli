(** Scripted delay samplers for adversarially scheduled experiments
    ({!Fig1}, {!Starvation}, {!Swmr_inversion}). *)

val scripted : int list -> int -> Sim.Link.sampler
(** [scripted script default] plays the delays of [script] in order, then
    returns [default] forever. *)

val far : int
(** A delay far beyond any experiment's horizon: keeps a message in
    flight "forever" (asynchrony made maximal). *)
