lib/registers/collect.ml: Array List Messages Net Params Sim
