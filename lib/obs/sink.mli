(** Pluggable event consumers.

    A sink is just a named callback; the {!Hub} fans events out to every
    attached sink and short-circuits entirely when none is attached. *)

type t = { name : string; emit : Event.t -> unit; flush : unit -> unit }

val make : ?flush:(unit -> unit) -> name:string -> (Event.t -> unit) -> t

val memory : ?name:string -> unit -> t * (unit -> Event.t list)
(** An in-memory collector; the second component returns the events
    recorded so far, oldest first. *)

val jsonl : ?name:string -> ?flush:(unit -> unit) -> (string -> unit) -> t
(** Serializes each event as one JSON line (newline included) through the
    given writer — typically [output_string oc]. *)
