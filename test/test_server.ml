open Util
open Registers

let env ?(round = 1) ?(client = 0) ?(inst = 0) body =
  { Messages.round; client; inst; body; span = Obs.Trace_ctx.none }

let cell sn v = { Messages.sn; v = Value.int v }

let test_write_updates_and_acks () =
  let srv = Server.create ~id:0 in
  match Server.handle srv (env (Messages.Write (cell 1 42))) with
  | Some (Messages.Ack_write h) ->
    check_true "fresh helping is bot" (h = None);
    let i = Server.instance srv 0 in
    check_true "last_val stored" (Messages.cell_equal i.Server.last_val (cell 1 42))
  | Some (Messages.Ack_read _) | None -> Alcotest.fail "expected Ack_write"

let test_new_help_silent () =
  let srv = Server.create ~id:0 in
  check_true "no ack for NEW_HELP_VAL"
    (Server.handle srv (env (Messages.New_help (cell 2 7))) = None);
  let i = Server.instance srv 0 in
  check_true "helping stored"
    (Messages.help_equal i.Server.helping (Some (cell 2 7)))

let test_read_resets_helping_when_new () =
  let srv = Server.create ~id:0 in
  ignore (Server.handle srv (env (Messages.New_help (cell 2 7))));
  (* READ(false) leaves helping alone. *)
  (match Server.handle srv (env (Messages.Read false)) with
  | Some (Messages.Ack_read (_, h)) ->
    check_true "helping survives" (Messages.help_equal h (Some (cell 2 7)))
  | Some (Messages.Ack_write _) | None -> Alcotest.fail "expected Ack_read");
  (* READ(true) resets it — line 22. *)
  match Server.handle srv (env (Messages.Read true)) with
  | Some (Messages.Ack_read (_, h)) -> check_true "helping reset" (h = None)
  | Some (Messages.Ack_write _) | None -> Alcotest.fail "expected Ack_read"

let test_ack_write_carries_helping () =
  let srv = Server.create ~id:0 in
  ignore (Server.handle srv (env (Messages.New_help (cell 3 9))));
  match Server.handle srv (env (Messages.Write (cell 4 10))) with
  | Some (Messages.Ack_write h) ->
    check_true "current helping returned"
      (Messages.help_equal h (Some (cell 3 9)))
  | Some (Messages.Ack_read _) | None -> Alcotest.fail "expected Ack_write"

let test_instances_isolated () =
  let srv = Server.create ~id:0 in
  ignore (Server.handle srv (env ~inst:0 (Messages.Write (cell 1 1))));
  ignore (Server.handle srv (env ~inst:5 (Messages.Write (cell 9 9))));
  let i0 = Server.instance srv 0 and i5 = Server.instance srv 5 in
  check_true "inst 0" (Messages.cell_equal i0.Server.last_val (cell 1 1));
  check_true "inst 5" (Messages.cell_equal i5.Server.last_val (cell 9 9));
  check_int "two instances" 2 (List.length (Server.instances srv))

let test_unwritten_instance_is_bot () =
  let srv = Server.create ~id:3 in
  let i = Server.instance srv 0 in
  check_true "bot cell" (Messages.cell_equal i.Server.last_val Messages.bot_cell);
  check_true "bot helping" (i.Server.helping = None);
  check_int "id" 3 (Server.id srv)

let test_corrupt_changes_state () =
  let srv = Server.create ~id:0 in
  ignore (Server.handle srv (env (Messages.Write (cell 1 42))));
  let rng = Sim.Rng.create 99 in
  Server.corrupt srv rng;
  let i = Server.instance srv 0 in
  check_false "state scrambled"
    (Messages.cell_equal i.Server.last_val (cell 1 42))

(* Corruption draws rng values in sorted-instance order (stablint R1):
   the resulting state must not depend on the hash-table insertion
   order of the instances. *)
let test_corrupt_insertion_order_independent () =
  let build order =
    let srv = Server.create ~id:0 in
    List.iter (fun inst -> ignore (Server.instance srv inst)) order;
    Server.corrupt srv (Sim.Rng.create 1234);
    Server.instances srv
  in
  let a = build [ 0; 1; 2; 3; 4 ] in
  let b = build [ 3; 0; 4; 2; 1 ] in
  check_int "same instance count" (List.length a) (List.length b);
  List.iter2
    (fun (ka, ia) (kb, ib) ->
      check_int "same key" ka kb;
      check_true "same corrupted cell"
        (Messages.cell_equal ia.Server.last_val ib.Server.last_val);
      check_true "same corrupted help"
        (Messages.help_equal ia.Server.helping ib.Server.helping))
    a b

let tests =
  [
    case "corrupt is insertion-order independent"
      test_corrupt_insertion_order_independent;
    case "write updates and acks (lines 19-20)" test_write_updates_and_acks;
    case "new_help silent (line 21)" test_new_help_silent;
    case "read resets helping (lines 22-23)" test_read_resets_helping_when_new;
    case "ack_write carries helping" test_ack_write_carries_helping;
    case "instances isolated" test_instances_isolated;
    case "unwritten is bot" test_unwritten_instance_is_bot;
    case "corruption" test_corrupt_changes_state;
  ]
